// Command queryd serves analytical queries over one published
// uncertain graph: a long-lived HTTP/JSON daemon for the paper's
// consumption side (§1, §6), backed by the batched possible-world
// query engine (worlds sampled once per request, one BFS per distinct
// source per world, pooled zero-alloc buffers across requests).
//
// Usage:
//
//	queryd -graph published.ug [-addr :8781] [-worlds 738] [-workers N] [-seed 1]
//	       [-max-worlds 20000] [-mem-budget 1073741824] [-max-knn-sources 64]
//	       [-tolerance 0.05]
//
// Endpoints:
//
//	GET  /healthz
//	GET  /reliability?s=0&t=5[&worlds=1000][&seed=7]
//	GET  /distance?s=0&t=5
//	GET  /knn?s=0&k=10
//	POST /batch   {"worlds":1000,"queries":[{"op":"reliability","s":0,"t":5}, ...]}
//
// Unless a request pins a seed, its world stream is derived from the
// server seed and the request content, so identical requests return
// identical answers.
//
// The daemon shuts down gracefully: SIGINT or SIGTERM stops accepting
// new connections, lets in-flight requests drain for -drain (default
// 10s), then force-closes whatever remains — a dropped connection's
// request context cancels its batch run mid-flight — and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	ug "uncertaingraph"
	"uncertaingraph/internal/qserve"
)

func main() {
	var (
		gin       = flag.String("graph", "", "published uncertain graph to serve (required)")
		addr      = flag.String("addr", ":8781", "listen address (port 0 picks a free port)")
		worlds    = flag.Int("worlds", 0, "default worlds per request (0 selects the Hoeffding default, 738)")
		maxWorlds = flag.Int("max-worlds", qserve.DefaultMaxWorlds, "per-request worlds cap")
		memBudget = flag.Int64("mem-budget", qserve.DefaultMemoryBudget, "per-request worst-case accumulator budget in bytes (over-budget requests get HTTP 413)")
		maxKNN    = flag.Int("max-knn-sources", qserve.DefaultMaxKNNSources, "per-request cap on distinct k-NN sources")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent world evaluations per request (answers are identical for every value)")
		seed      = flag.Int64("seed", 1, "base seed for content-derived request streams")
		tol       = flag.Float64("tolerance", 0, "default adaptive-precision tolerance: requests stop sampling once every query's relative SEM is at most this (0 disables; requests may override via the \"tolerance\" field)")
		drain     = flag.Duration("drain", 10*time.Second, "graceful-shutdown deadline for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()
	if *gin == "" {
		fatal(fmt.Errorf("need -graph"))
	}
	if !(*tol >= 0) || math.IsInf(*tol, 0) {
		fatal(fmt.Errorf("-tolerance %v must be a finite non-negative number", *tol))
	}

	f, err := os.Open(*gin)
	if err != nil {
		fatal(err)
	}
	g, err := ug.ReadUncertainGraph(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	srv := &qserve.Server{
		G:             g,
		Worlds:        *worlds,
		MaxWorlds:     *maxWorlds,
		Workers:       *workers,
		Seed:          *seed,
		Tolerance:     *tol,
		MemoryBudget:  *memBudget,
		MaxKNNSources: *maxKNN,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The address line goes to stdout unbuffered so supervisors (and the
	// smoke test) can read the chosen port before the first request.
	fmt.Printf("queryd: serving %d vertices / %d candidate pairs at http://%s\n",
		g.NumVertices(), g.NumPairs(), ln.Addr())
	httpServer := &http.Server{
		Handler: srv.Handler(),
		// Bound header/idle time so stalled clients cannot pin
		// goroutines and fds forever; no WriteTimeout, since a
		// max-worlds batch is allowed to compute for a while.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: SIGINT/SIGTERM stops the accept loop, in-flight
	// requests get *drain to finish, then the remaining connections are
	// force-closed (cancelling their request contexts, which aborts
	// their batch runs between worlds). Either way the daemon exits 0 —
	// a supervisor's stop is not an error.
	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-sigCtx.Done():
		stop() // restore default signal handling: a second signal kills
		fmt.Printf("queryd: shutting down (draining up to %s)\n", *drain)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
		err := httpServer.Shutdown(shutCtx)
		cancel()
		if err != nil {
			// Drain deadline hit: force-close stragglers; their request
			// contexts cancel and the pooled batches stop mid-flight.
			httpServer.Close()
		}
		<-serveErr // Serve has returned ErrServerClosed by now
		fmt.Println("queryd: shutdown complete")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "queryd:", err)
	os.Exit(1)
}
