// Command obfuscate runs the paper's Algorithm 1 on an edge-list graph
// and writes the resulting uncertain graph.
//
// Usage:
//
//	obfuscate -in graph.edges -k 20 -eps 0.01 -out published.ug
//	obfuscate -in graph.edges -k 20 -eps 0.01 -format binary -out published.ugb
//
// -format selects the output serialization: text (the default "u v p"
// lines) or binary (the mmap-ready .ugb format cmd/queryd cold-starts
// from without parsing).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	ug "uncertaingraph"
)

func main() {
	var (
		in       = flag.String("in", "", "input edge list (default stdin)")
		out      = flag.String("out", "", "output uncertain graph (default stdout)")
		k        = flag.Float64("k", 20, "obfuscation level k")
		eps      = flag.Float64("eps", 0.01, "tolerated fraction of non-obfuscated vertices")
		c        = flag.Float64("c", 2, "candidate-set multiplier |E_C| = c|E|")
		q        = flag.Float64("q", 0.01, "white-noise fraction")
		trials   = flag.Int("t", 5, "attempts per noise level")
		delta    = flag.Float64("delta", 1e-8, "binary search resolution on sigma")
		seed     = flag.Int64("seed", 1, "random seed (0 behaves as 1)")
		workers  = flag.Int("workers", 0, "parallel workers (0 = all CPUs); results are identical for every value")
		progress = flag.Bool("progress", false, "report σ-probe progress on stderr")
		format   = flag.String("format", "text", "output format: text (\"u v p\" lines) or binary (.ugb)")
	)
	flag.Parse()
	if *format != "text" && *format != "binary" {
		fatal(fmt.Errorf("-format %q: want text or binary", *format))
	}

	r := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	g, _, err := ug.ReadGraph(r)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loaded: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// SIGINT/SIGTERM cancels the search between σ probes and scan chunks.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The seed rides in the params struct rather than WithSeed so the
	// int64 flag keeps its exact v1 meaning (including negative values,
	// which the uint64 option would remap).
	opts := []ug.Option{
		ug.WithK(*k), ug.WithEps(*eps),
		ug.WithObfuscation(ug.ObfuscationParams{
			C: *c, Q: *q, Trials: *trials, Delta: *delta, Seed: *seed,
		}),
		ug.WithWorkers(*workers),
	}
	if *progress {
		opts = append(opts, ug.WithProgress(func(p ug.Progress) {
			if p.Total > 0 {
				fmt.Fprintf(os.Stderr, "probe %d/~%d\n", p.Done, p.Total)
			} else {
				fmt.Fprintf(os.Stderr, "probe %d (bounding sigma)\n", p.Done)
			}
		}))
	}

	start := time.Now()
	res, err := ug.Obfuscate(ctx, g, opts...)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr,
		"(k=%g, eps=%g)-obfuscation found: sigma=%.6e achieved-eps=%.6f pairs=%d (%.1f edges/sec, %s)\n",
		*k, *eps, res.Sigma, res.EpsTilde, res.G.NumPairs(),
		float64(g.NumEdges())/elapsed.Seconds(), elapsed.Round(time.Millisecond))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if *format == "binary" {
		err = ug.WriteUncertainGraphBinary(w, res.G)
	} else {
		err = ug.WriteUncertainGraph(w, res.G)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obfuscate:", err)
	os.Exit(1)
}
