// Command benchfmt converts `go test -bench` output into JSON records
// and appends them to a benchmark history file, so performance numbers
// accumulate across PRs instead of vanishing in CI logs.
//
// Usage (what `make bench-sampling` runs):
//
//	go test -bench ... -benchmem ./internal/sampling | benchfmt -label post-csr -file BENCH_sampling.json
//
// The file holds a JSON array of run records, oldest first; each run
// carries its label, timestamp, environment and parsed benchmark
// lines. Existing records are preserved, so the first entry stays the
// pre-refactor baseline the acceptance criteria compare against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Run is one benchmark session.
type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	label := flag.String("label", "local", "label for this run (e.g. a commit or PR id)")
	file := flag.String("file", "BENCH_sampling.json", "history file to append to")
	flag.Parse()

	run := Run{
		Label:     *label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	failed := false
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // stay transparent: every raw line reaches the terminal
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = cpu
		}
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") ||
			strings.HasPrefix(line, "panic:") {
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if failed {
		fatal(fmt.Errorf("benchmark run failed; nothing recorded"))
	}
	if len(run.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}

	var history []Run
	if data, err := os.ReadFile(*file); err == nil {
		if err := json.Unmarshal(data, &history); err != nil {
			fatal(fmt.Errorf("existing %s is not a run array: %w", *file, err))
		}
	} else if !os.IsNotExist(err) {
		fatal(err)
	}
	history = append(history, run)
	out, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*file, append(out, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchfmt: appended %d benchmarks to %s (%d runs total)\n",
		len(run.Benchmarks), *file, len(history))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfmt:", err)
	os.Exit(1)
}
