// Command benchfmt converts `go test -bench` output into JSON records
// and appends them to a benchmark history file, so performance numbers
// accumulate across PRs instead of vanishing in CI logs.
//
// Usage (what `make bench-sampling` runs):
//
//	go test -bench ... -benchmem ./internal/sampling | benchfmt -label post-csr -file BENCH_sampling.json
//
// The file holds a JSON array of run records, oldest first; each run
// carries its label, timestamp, environment and parsed benchmark
// lines. Existing records are preserved, so the first entry stays the
// pre-refactor baseline the acceptance criteria compare against.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values (e.g. "worlds/op" from
	// BenchmarkEstimateAdaptive), keyed by their full unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is one benchmark session.
type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine splits a result line into name, iteration count and the
// metric list; metricPair then walks every "<value> <unit>/op" in it.
// The testing package prints custom ReportMetric units between ns/op
// and the -benchmem pair, so position-based parsing would drop B/op
// and allocs/op the moment a benchmark reports one. Sub-benchmark
// names ("BenchmarkFoo/hot-cache-8") keep their slash path; only the
// trailing -GOMAXPROCS suffix is stripped.
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)
	metricPair = regexp.MustCompile(`([\d.]+)\s+(\S+)/op`)
)

// parseRun scans `go test -bench` output from in, echoing every raw
// line to echo, and returns the parsed benchmark lines plus
// environment metadata. It fails when the stream contains a test
// failure marker or yields no benchmark lines, so a broken benchmark
// run can never record an empty or misleading history entry.
func parseRun(label string, in io.Reader, echo io.Writer) (Run, error) {
	run := Run{
		Label:     label,
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	failed := false
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line) // stay transparent: every raw line reaches the terminal
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			run.CPU = cpu
		}
		if strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL") ||
			strings.HasPrefix(line, "panic:") {
			failed = true
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		sawNs := false
		for _, p := range metricPair.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(p[1], 64)
			if err != nil {
				continue
			}
			switch p[2] {
			case "ns":
				b.NsPerOp = v
				sawNs = true
			case "B":
				b.BytesPerOp = int64(v)
			case "allocs":
				b.AllocsPerOp = int64(v)
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[p[2]+"/op"] = v
			}
		}
		if !sawNs {
			continue
		}
		run.Benchmarks = append(run.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return run, err
	}
	if failed {
		return run, fmt.Errorf("benchmark run failed; nothing recorded")
	}
	if len(run.Benchmarks) == 0 {
		return run, fmt.Errorf("no benchmark lines found on stdin")
	}
	return run, nil
}

// appendHistory appends run to the JSON run array in file (creating it
// if absent) and returns the new total run count. A file that exists
// but does not hold a run array is an error, never overwritten.
func appendHistory(file string, run Run) (int, error) {
	var history []Run
	if data, err := os.ReadFile(file); err == nil {
		if err := json.Unmarshal(data, &history); err != nil {
			return 0, fmt.Errorf("existing %s is not a run array: %w", file, err)
		}
	} else if !os.IsNotExist(err) {
		return 0, err
	}
	history = append(history, run)
	out, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(file, append(out, '\n'), 0o644); err != nil {
		return 0, err
	}
	return len(history), nil
}

func main() {
	label := flag.String("label", "local", "label for this run (e.g. a commit or PR id)")
	file := flag.String("file", "BENCH_sampling.json", "history file to append to")
	flag.Parse()

	run, err := parseRun(*label, os.Stdin, os.Stdout)
	if err != nil {
		fatal(err)
	}
	total, err := appendHistory(*file, run)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchfmt: appended %d benchmarks to %s (%d runs total)\n",
		len(run.Benchmarks), *file, total)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfmt:", err)
	os.Exit(1)
}
