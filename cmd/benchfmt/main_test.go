package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleOutput is a realistic -benchmem session: a cpu line, a custom
// ReportMetric between ns/op and the benchmem pair, and sub-benchmark
// names with slash paths (the shape `make bench-qserve` records for
// BenchmarkRegistryCachedRequest).
const sampleOutput = `goos: linux
goarch: amd64
pkg: uncertaingraph/internal/qserve
cpu: AMD EPYC 7B13
BenchmarkRegistryHotRequest-8   	    1500	    748123 ns/op	   51234 B/op	      51 allocs/op
BenchmarkRegistryCachedRequest/hot-cache-8         	  100000	     10312 ns/op	    4821 B/op	      47 allocs/op
BenchmarkRegistryCachedRequest/hot-graph-cold-cache-8	    1500	    768001 ns/op	   52000 B/op	      63 allocs/op
BenchmarkEstimateAdaptive-8     	      20	  51234567 ns/op	       612.0 worlds/op	 1024 B/op	      12 allocs/op
PASS
ok  	uncertaingraph/internal/qserve	2.31s
`

func TestParseRun(t *testing.T) {
	var echo strings.Builder
	run, err := parseRun("pr10", strings.NewReader(sampleOutput), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != sampleOutput {
		t.Error("raw output was not echoed verbatim")
	}
	if run.Label != "pr10" || run.CPU != "AMD EPYC 7B13" {
		t.Errorf("metadata: label=%q cpu=%q", run.Label, run.CPU)
	}
	if run.GoVersion == "" || run.GOOS == "" || run.GOARCH == "" {
		t.Errorf("environment fields missing: %+v", run)
	}
	want := []Benchmark{
		{Name: "BenchmarkRegistryHotRequest", Iterations: 1500, NsPerOp: 748123, BytesPerOp: 51234, AllocsPerOp: 51},
		{Name: "BenchmarkRegistryCachedRequest/hot-cache", Iterations: 100000, NsPerOp: 10312, BytesPerOp: 4821, AllocsPerOp: 47},
		{Name: "BenchmarkRegistryCachedRequest/hot-graph-cold-cache", Iterations: 1500, NsPerOp: 768001, BytesPerOp: 52000, AllocsPerOp: 63},
		{Name: "BenchmarkEstimateAdaptive", Iterations: 20, NsPerOp: 51234567, BytesPerOp: 1024, AllocsPerOp: 12,
			Metrics: map[string]float64{"worlds/op": 612}},
	}
	if len(run.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(run.Benchmarks), len(want), run.Benchmarks)
	}
	for i, w := range want {
		got := run.Benchmarks[i]
		if got.Name != w.Name || got.Iterations != w.Iterations || got.NsPerOp != w.NsPerOp ||
			got.BytesPerOp != w.BytesPerOp || got.AllocsPerOp != w.AllocsPerOp {
			t.Errorf("benchmark %d: got %+v, want %+v", i, got, w)
		}
		if w.Metrics != nil && got.Metrics["worlds/op"] != w.Metrics["worlds/op"] {
			t.Errorf("benchmark %d metrics: got %v, want %v", i, got.Metrics, w.Metrics)
		}
	}
}

func TestParseRunRejectsFailures(t *testing.T) {
	for name, in := range map[string]string{
		"fail-line":  "BenchmarkX-8 10 100 ns/op\nFAIL\n",
		"test-fail":  "--- FAIL: TestGuard\nBenchmarkX-8 10 100 ns/op\n",
		"panic":      "BenchmarkX-8 10 100 ns/op\npanic: runtime error\n",
		"no-benches": "goos: linux\nPASS\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := parseRun("l", strings.NewReader(in), &strings.Builder{}); err == nil {
				t.Errorf("parseRun accepted %q", in)
			}
		})
	}
}

func TestAppendHistory(t *testing.T) {
	file := filepath.Join(t.TempDir(), "BENCH_test.json")
	run := Run{Label: "first", Benchmarks: []Benchmark{{Name: "BenchmarkA", NsPerOp: 42}}}
	if n, err := appendHistory(file, run); err != nil || n != 1 {
		t.Fatalf("first append: n=%d err=%v", n, err)
	}
	run.Label = "second"
	if n, err := appendHistory(file, run); err != nil || n != 2 {
		t.Fatalf("second append: n=%d err=%v", n, err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var history []Run
	if err := json.Unmarshal(data, &history); err != nil {
		t.Fatalf("history is not a run array: %v", err)
	}
	if len(history) != 2 || history[0].Label != "first" || history[1].Label != "second" {
		t.Errorf("history corrupted: %+v", history)
	}
	if history[0].Benchmarks[0].Name != "BenchmarkA" {
		t.Errorf("oldest record lost its benchmarks: %+v", history[0])
	}
}

// A file that exists but is not a run array must never be overwritten:
// losing the accumulated baseline would silently rebase every
// acceptance comparison.
func TestAppendHistoryRefusesCorruptFile(t *testing.T) {
	file := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(file, []byte(`{"not":"an array"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := appendHistory(file, Run{Label: "x"}); err == nil {
		t.Fatal("appendHistory accepted a corrupt history file")
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"not":"an array"}` {
		t.Errorf("corrupt file was rewritten: %s", data)
	}
}
