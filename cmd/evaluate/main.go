// Command evaluate computes the paper's ten utility statistics. It
// accepts either an uncertain graph (sampling possible worlds, Section
// 6.1) or a certain edge list, and optionally a reference graph to
// report relative errors against.
//
// Usage:
//
//	evaluate -uncertain published.ug -worlds 100 -ref original.edges
//	evaluate -uncertain published.ug -tolerance 0.05 -max-worlds 2000
//	evaluate -graph original.edges
//
// With -tolerance the sampling run is adaptive: it stops at the first
// block boundary where every statistic's relative SEM is inside the
// tolerance, up to the -max-worlds (or -worlds) budget. Statistics
// still outside the tolerance when the budget ran out are marked "!"
// in the rel.SEM column.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"text/tabwriter"

	ug "uncertaingraph"
)

func main() {
	var (
		uin     = flag.String("uncertain", "", "uncertain graph input")
		gin     = flag.String("graph", "", "certain graph input (edge list)")
		ref     = flag.String("ref", "", "reference edge list for relative errors")
		worlds  = flag.Int("worlds", 100, "possible worlds to sample")
		seed    = flag.Int64("seed", 1, "random seed")
		exact   = flag.Bool("exact-distances", false, "use exact BFS instead of HyperANF")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent world evaluations (results are identical for every value)")
		tol     = flag.Float64("tolerance", 0, "adaptive precision: stop sampling once every statistic's relative SEM is at most this (0 disables)")
		maxW    = flag.Int("max-worlds", 0, "world budget for adaptive runs (0 keeps -worlds as the budget)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancels the sampling run between worlds.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The seed and world count ride in the config struct rather than
	// WithSeed/WithWorlds so both flags keep their exact v1 meaning:
	// the int64 seed is not remapped through uint64, and -worlds 0
	// still selects the sampling default instead of being rejected.
	opts := []ug.Option{
		ug.WithWorkers(*workers),
		ug.WithEstimate(ug.EstimateConfig{Seed: *seed, Worlds: *worlds}),
	}
	if *exact {
		opts = append(opts, ug.WithDistances(ug.DistanceExactBFS))
	}
	if *tol > 0 {
		opts = append(opts, ug.WithTolerance(*tol))
	}
	if *maxW > 0 {
		opts = append(opts, ug.WithMaxWorlds(*maxW))
	}

	var refStats map[string]float64
	if *ref != "" {
		f, err := os.Open(*ref)
		if err != nil {
			fatal(err)
		}
		rg, _, err := ug.ReadGraph(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if refStats, err = ug.Statistics(ctx, rg, opts...); err != nil {
			fatal(err)
		}
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	switch {
	case *uin != "":
		f, err := os.Open(*uin)
		if err != nil {
			fatal(err)
		}
		g, err := ug.ReadUncertainGraph(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sampling %d worlds of %d vertices / %d pairs\n",
			*worlds, g.NumVertices(), g.NumPairs())
		rep, err := ug.EstimateStatistics(ctx, g, opts...)
		if err != nil {
			fatal(err)
		}
		if *tol > 0 {
			fmt.Fprintf(os.Stderr, "adaptive: %d worlds used (tolerance %g)\n", rep.WorldsUsed, *tol)
		}
		fmt.Fprintln(w, "statistic\tmean\trel.SEM\trel.err")
		for _, name := range ug.StatNames {
			fmt.Fprintf(w, "%s\t%.6g\t%.4f", name, rep.Mean(name), rep.RelSEM(name))
			if rep.Converged != nil && !rep.Converged[name] {
				fmt.Fprint(w, "!")
			}
			if refStats != nil {
				fmt.Fprintf(w, "\t%.4f", rep.RelErr(name, refStats[name]))
			} else {
				fmt.Fprint(w, "\t-")
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "exact E[S_NE]\t%.6g\t\t\n", rep.ExactNE)
		fmt.Fprintf(w, "exact E[S_AD]\t%.6g\t\t\n", rep.ExactAD)
	case *gin != "":
		f, err := os.Open(*gin)
		if err != nil {
			fatal(err)
		}
		g, _, err := ug.ReadGraph(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		vals, err := ug.Statistics(ctx, g, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "statistic\tvalue\trel.err")
		for _, name := range ug.StatNames {
			fmt.Fprintf(w, "%s\t%.6g", name, vals[name])
			if refStats != nil {
				d := refStats[name]
				if d != 0 {
					fmt.Fprintf(w, "\t%.4f", abs(vals[name]-d)/abs(d))
				}
			} else {
				fmt.Fprint(w, "\t-")
			}
			fmt.Fprintln(w)
		}
	default:
		fatal(fmt.Errorf("need -uncertain or -graph"))
	}
	w.Flush()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evaluate:", err)
	os.Exit(1)
}
