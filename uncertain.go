package uncertaingraph

import (
	"io"
	"math/rand"

	"uncertaingraph/internal/ugbin"
	"uncertaingraph/internal/uncertain"
)

// UncertainGraph is the publication object: a vertex set plus candidate
// pairs carrying edge-existence probabilities (paper Definition 1).
type UncertainGraph = uncertain.Graph

// Pair is a vertex pair with an existence probability.
type Pair = uncertain.Pair

// NewUncertainGraph builds an uncertain graph on n vertices from
// candidate pairs, validating vertices and probabilities.
func NewUncertainGraph(n int, pairs []Pair) (*UncertainGraph, error) {
	return uncertain.New(n, pairs)
}

// CertainGraph lifts a deterministic graph into an uncertain graph with
// all-probability-one edges.
func CertainGraph(g *Graph) *UncertainGraph { return uncertain.FromCertain(g) }

// SampleWorld draws one possible world: each candidate pair
// materializes independently with its probability (paper Eq. 1). The
// result is an independent graph; loops over many worlds should hold a
// WorldSampler instead.
//
// SampleWorld is a single-draw primitive and deliberately keeps its
// *rand.Rand parameter (seed it via NewRand); the long-running world
// loops — EstimateStatistics, QueryBatch — are the context-first,
// WithSeed-configured entry points of the v2 API.
func SampleWorld(g *UncertainGraph, rng *rand.Rand) *Graph { return g.SampleWorld(rng) }

// WorldSampler materializes possible worlds into preallocated CSR
// buffers: zero heap allocations per world, bit-identical to
// SampleWorld for equal RNG states. The returned graph of each Sample
// call is reused by the next, and a sampler serves one goroutine; see
// the README's "Graph representation & memory model" section.
type WorldSampler = uncertain.Sampler

// NewWorldSampler builds the reusable sampling state for g.
func NewWorldSampler(g *UncertainGraph) *WorldSampler { return g.NewSampler() }

// ReadUncertainGraph parses the "u v p" format written by
// WriteUncertainGraph.
func ReadUncertainGraph(r io.Reader) (*UncertainGraph, error) { return uncertain.Read(r) }

// WriteUncertainGraph serializes an uncertain graph.
func WriteUncertainGraph(w io.Writer, g *UncertainGraph) error { return uncertain.Write(w, g) }

// WriteUncertainGraphBinary serializes g in the versioned, checksummed
// binary .ugb format: the graph's columnar arrays laid out verbatim, so
// loading is a validation pass over sections rather than a parse. See
// the README's "On-disk format & cold start" section.
func WriteUncertainGraphBinary(w io.Writer, g *UncertainGraph) error { return ugbin.Write(w, g) }

// LoadUncertainGraphBinary brings the .ugb file at path into memory —
// memory-mapped where the platform supports it (the graph's arrays
// alias the page cache; loading costs a page-table setup) and read into
// the heap elsewhere.
func LoadUncertainGraphBinary(path string) (*UncertainGraph, error) { return ugbin.Load(path) }

// DecodeUncertainGraphBinary builds a graph over .ugb bytes already in
// memory, adopting 8-byte-aligned buffers zero-copy (data must then
// stay live and unmodified for the graph's lifetime; see
// UncertainGraph.MappedBytes).
func DecodeUncertainGraphBinary(data []byte) (*UncertainGraph, error) { return ugbin.Decode(data) }

// SniffUncertainGraphBinary reports whether the bytes begin with the
// .ugb magic — enough to route a file or upload between
// ReadUncertainGraph and the binary loader.
func SniffUncertainGraphBinary(prefix []byte) bool { return ugbin.Sniff(prefix) }
