package uncertaingraph

import (
	"io"
	"math/rand"

	"uncertaingraph/internal/gen"
	"uncertaingraph/internal/graph"
)

// Graph is an immutable simple undirected graph on vertices 0..N-1.
type Graph = graph.Graph

// Edge is an unordered pair of vertices.
type Edge = graph.Edge

// GraphBuilder accumulates edges and produces immutable Graphs.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphFromEdges builds a graph from an edge list, dropping duplicates
// and self-loops.
func GraphFromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// ReadGraph parses a whitespace-separated edge list ("u v" lines, '#'
// and '%' comments); vertex ids are remapped densely and the mapping is
// returned.
func ReadGraph(r io.Reader) (*Graph, map[string]int, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes the graph as an edge list.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Random-graph generators for synthetic workloads.

// ErdosRenyi returns a uniform random graph with n vertices and m edges.
func ErdosRenyi(rng *rand.Rand, n, m int) *Graph { return gen.ErdosRenyiGNM(rng, n, m) }

// BarabasiAlbert returns a preferential-attachment graph (heavy-tailed
// degrees); each new vertex attaches to m existing vertices.
func BarabasiAlbert(rng *rand.Rand, n, m int) *Graph { return gen.BarabasiAlbert(rng, n, m) }

// SocialGraph returns a clique-affiliation graph: nGroups overlapping
// event cliques with sizes drawn from sizePMF, preferential membership
// with repeat-collaboration probability repeatP — the generator behind
// the repository's dblp/flickr/Y360 stand-ins.
func SocialGraph(rng *rand.Rand, n, nGroups int, sizePMF []float64, repeatP float64) *Graph {
	return gen.Affiliation(rng, n, nGroups, sizePMF, 0, repeatP, 1)
}
